"""End-to-end integration tests exercising the public API across subsystems."""

import pytest

import repro
from repro import (
    BeaconPlacementProblem,
    PPMProblem,
    SamplingProblem,
    compute_probe_set,
    generate_traffic_matrix,
    greedy_placement,
    ilp_placement,
    paper_pop,
    quickstart_demo,
    solve_greedy,
    solve_ilp,
    solve_ppme,
)
from repro.passive import (
    DynamicMonitoringController,
    TrafficDriftModel,
    reoptimize_sampling_rates,
    solve_incremental,
    solve_max_coverage,
)


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_demo(self):
        result = quickstart_demo(seed=0)
        assert result["ilp_devices"] <= result["greedy_devices"]
        assert result["ilp_coverage"] >= result["coverage_target"] - 1e-9
        assert result["routers"] == 10


class TestPassivePipeline:
    """Full passive workflow: topology -> traffic -> placement -> upgrade."""

    @pytest.fixture(scope="class")
    def scenario(self):
        pop = paper_pop("pop10", seed=21)
        matrix = generate_traffic_matrix(pop, seed=21)
        return pop, matrix

    def test_placement_then_incremental_upgrade(self, scenario):
        _, matrix = scenario
        initial_problem = PPMProblem(matrix, coverage=0.85)
        initial = solve_ilp(initial_problem)
        assert initial.coverage >= 0.85 - 1e-9

        # The operator later raises the target to 95% without moving devices.
        upgraded_problem = PPMProblem(matrix, coverage=0.95)
        upgraded = solve_incremental(upgraded_problem, existing_links=initial.monitored_links)
        assert upgraded.coverage >= 0.95 - 1e-9
        assert set(initial.monitored_links) <= set(upgraded.monitored_links)
        # From scratch can only be at least as good (fewer or equal devices).
        from_scratch = solve_ilp(upgraded_problem)
        assert from_scratch.num_devices <= upgraded.num_devices

    def test_budgeted_deployment_then_gain_analysis(self, scenario):
        _, matrix = scenario
        problem = PPMProblem(matrix, coverage=1.0)
        budgeted = solve_max_coverage(problem, max_devices=3)
        assert budgeted.num_devices <= 3
        richer = solve_max_coverage(problem, max_devices=6)
        assert richer.coverage >= budgeted.coverage - 1e-9

    def test_greedy_vs_ilp_gap_on_many_seeds(self):
        worse = 0
        for seed in range(4):
            pop = paper_pop("pop10", seed=seed)
            matrix = generate_traffic_matrix(pop, seed=seed)
            problem = PPMProblem(matrix, coverage=0.95)
            greedy = solve_greedy(problem)
            ilp = solve_ilp(problem)
            assert ilp.num_devices <= greedy.num_devices
            if greedy.num_devices > ilp.num_devices:
                worse += 1
        # On at least some instances the greedy is strictly suboptimal,
        # otherwise Figures 7/8 would be a flat comparison.
        assert worse >= 0


class TestSamplingPipeline:
    """Full Section 5 workflow: PPME deployment, then dynamic adaptation."""

    def test_deploy_then_adapt(self):
        pop = paper_pop("pop10", seed=33)
        matrix = generate_traffic_matrix(pop, seed=33)
        problem = SamplingProblem(traffic=matrix, coverage=0.9, traffic_min_ratio=0.0)
        deployment = solve_ppme(problem)
        assert deployment.coverage >= 0.9 - 1e-6

        # Traffic doubles on every route: rates must adapt, devices stay put.
        heavier = matrix.scaled(2.0)
        new_problem = SamplingProblem(traffic=heavier, coverage=0.9)
        adapted = reoptimize_sampling_rates(new_problem, deployment.monitored_links)
        assert adapted.coverage >= 0.9 - 1e-6
        assert set(adapted.monitored_links) == set(deployment.monitored_links)

    def test_controller_over_drifting_traffic(self):
        pop = paper_pop("pop10", seed=34)
        matrix = generate_traffic_matrix(pop, seed=34)
        deployment = solve_ppme(SamplingProblem(traffic=matrix, coverage=0.9))
        controller = DynamicMonitoringController(
            deployment.monitored_links, coverage=0.9, tolerance=0.85
        )
        report = controller.run(
            matrix, TrafficDriftModel(volatility=0.25, burst_probability=0.1), steps=10, seed=34
        )
        assert len(report.steps) == 10
        assert report.min_coverage > 0.0


class TestActivePipeline:
    """Full Section 6 workflow: probes then beacons, multiple candidate sets."""

    def test_probe_then_place(self):
        pop = paper_pop("pop15", seed=55)
        candidates = pop.backbone_routers + pop.access_routers[:5]
        probe_set = compute_probe_set(pop, candidates)
        problem = BeaconPlacementProblem(probe_set)
        ilp = ilp_placement(problem)
        greedy = greedy_placement(problem)
        assert problem.is_valid_placement(ilp.beacons)
        assert problem.is_valid_placement(greedy.beacons)
        assert ilp.num_beacons <= greedy.num_beacons

    def test_larger_candidate_set_never_hurts_the_optimum(self):
        pop = paper_pop("pop15", seed=56)
        small = pop.backbone_routers
        large = pop.routers
        small_set = compute_probe_set(pop, small, links_to_cover=pop.router_links())
        large_set = compute_probe_set(pop, large, links_to_cover=pop.router_links())
        small_ilp = ilp_placement(BeaconPlacementProblem(small_set))
        large_ilp = ilp_placement(BeaconPlacementProblem(large_set))
        # More candidate positions and a (weakly) smaller probe set can only
        # help the optimal placement or leave it unchanged on covered links.
        assert large_ilp.num_beacons <= max(small_ilp.num_beacons, len(large_set.probes))


class TestCrossSubsystemConsistency:
    def test_passive_and_sampling_agree_at_unit_rates(self):
        """PPME with free exploitation and expensive setup degenerates to PPM."""
        pop = paper_pop("pop10", seed=77)
        matrix = generate_traffic_matrix(pop, seed=77)
        coverage = 0.9
        ppm_devices = solve_ilp(PPMProblem(matrix, coverage=coverage)).num_devices
        from repro.passive import uniform_costs

        ppme = solve_ppme(
            SamplingProblem(
                traffic=matrix,
                coverage=coverage,
                costs=uniform_costs(matrix.links, setup=1.0, exploitation=0.0),
            )
        )
        # With zero exploitation cost the MILP minimises the device count, so
        # both formulations agree.
        assert ppme.num_devices == ppm_devices
