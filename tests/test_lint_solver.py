"""Tests for the project-specific AST linter (``tools/lint_solver.py``).

Each rule gets positive and negative units on source snippets, and the
whole ``src/repro`` tree is linted so the solver invariants are enforced by
the plain pytest tier as well as CI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from lint_solver import (  # noqa: E402
    DENSIFY_ALLOWLIST,
    Finding,
    iter_python_files,
    lint_source,
    main,
)


def _rules(source: str, path: str = "src/repro/optim/somefile.py"):
    return [f.rule for f in lint_source(source, path)]


class TestDensification:
    def test_to_dense_method_flagged(self):
        assert _rules("x = A.to_dense()") == ["SOLV001"]

    def test_as_dense_call_flagged(self):
        assert _rules("from repro.optim.sparse import as_dense\nx = as_dense(A)") == ["SOLV001"]

    def test_linalg_inv_flagged(self):
        assert _rules("import numpy as np\nB = np.linalg.inv(A)") == ["SOLV001"]
        assert _rules("import numpy\nB = numpy.linalg.inv(A)") == ["SOLV001"]

    def test_sparse_module_is_sanctioned(self):
        assert _rules("x = self.to_dense()", "src/repro/optim/sparse.py") == []

    def test_basis_factor_scope_is_sanctioned(self):
        src = (
            "class _BasisFactor:\n"
            "    def refactor(self, B):\n"
            "        import numpy as np\n"
            "        return np.linalg.inv(B.to_dense())\n"
        )
        assert _rules(src, "src/repro/optim/simplex.py") == []

    def test_other_simplex_scope_is_not_sanctioned(self):
        src = "def pivot(A):\n    return A.to_dense()\n"
        assert _rules(src, "src/repro/optim/simplex.py") == ["SOLV001"]

    def test_unrelated_methods_not_flagged(self):
        assert _rules("x = A.to_scipy()\ny = np.linalg.solve(A, b)") == []


class TestBroadExcept:
    def test_bare_except_flagged(self):
        assert _rules("try:\n    f()\nexcept:\n    pass") == ["SOLV002"]

    def test_broad_exception_flagged(self):
        assert _rules("try:\n    f()\nexcept Exception:\n    pass") == ["SOLV002"]
        assert _rules("try:\n    f()\nexcept BaseException as e:\n    pass") == ["SOLV002"]

    def test_pragma_comment_allows(self):
        src = "try:\n    f()\nexcept Exception:  # pragma: optional-dep\n    pass"
        assert _rules(src) == []

    def test_narrow_except_not_flagged(self):
        assert _rules("try:\n    f()\nexcept ImportError:\n    pass") == []
        assert _rules("try:\n    f()\nexcept (ValueError, KeyError):\n    pass") == []


class TestRuntimeAssert:
    def test_assert_flagged(self):
        found = lint_source("def f(x):\n    assert x is not None\n", "src/repro/m.py")
        assert [f.rule for f in found] == ["SOLV003"]
        assert found[0].line == 2

    def test_raise_not_flagged(self):
        src = "def f(x):\n    if x is None:\n        raise InternalSolverError('x')\n"
        assert _rules(src) == []


class TestFormMutation:
    def test_subscript_write_flagged(self):
        assert _rules("form.b_ub[0] = 1.0") == ["SOLV004"]
        assert _rules("self.form.c[j] += 2.0") == ["SOLV004"]
        assert _rules("session._form.lb[2] = 0.0") == ["SOLV004"]

    def test_solver_session_scope_is_sanctioned(self):
        src = (
            "class SolverSession:\n"
            "    def update_constraint_rhs(self, name, rhs):\n"
            "        self.form.b_ub[0] = rhs\n"
        )
        assert lint_source(src, "src/repro/optim/backend.py") == []

    def test_reduced_form_owners_flagged(self):
        # ReducedForm (the presolve output) backs the Postsolve mapping: its
        # arrays are covered under the reduced / _reduced owner names.
        assert _rules("reduced.b_ub[0] = 1.0") == ["SOLV004"]
        assert _rules("self._reduced.ub[j] -= 1.0") == ["SOLV004"]

    def test_non_form_subscript_not_flagged(self):
        assert _rules("table.c[0] = 1.0") == []
        assert _rules("form.data[0] = 1.0") == []
        assert _rules("reduction.c[0] = 1.0") == []

    def test_whole_attribute_rebind_not_flagged(self):
        # Rebinding the attribute itself is lowering, not in-place patching.
        assert _rules("form.c = np.zeros(3)") == []


class TestClockReads:
    def test_monotonic_flagged_in_optim(self):
        src = "import time\nt0 = time.monotonic()\n"
        assert _rules(src, "src/repro/optim/branch_and_bound.py") == ["SOLV005"]

    def test_all_clock_functions_flagged(self):
        for fn in ("monotonic", "perf_counter", "time"):
            src = f"import time\nt0 = time.{fn}()\n"
            assert _rules(src, "src/repro/optim/simplex.py") == ["SOLV005"], fn

    def test_resilience_module_is_sanctioned(self):
        src = "import time\nt0 = time.monotonic()\n"
        assert _rules(src, "src/repro/optim/resilience.py") == []

    def test_outside_optim_not_flagged(self):
        src = "import time\nt0 = time.monotonic()\n"
        assert _rules(src, "src/repro/experiments/runner.py") == []
        assert _rules(src, "benchmarks/test_bench_inhouse_solver.py") == []

    def test_non_clock_time_attrs_not_flagged(self):
        src = "import time\ntime.sleep(0.1)\nns = time.monotonic_ns\n"
        assert _rules(src, "src/repro/optim/backend.py") == []


class TestDriver:
    def test_repo_tree_is_clean(self):
        findings = []
        for path in iter_python_files([str(REPO_ROOT / "src" / "repro")]):
            findings.extend(lint_source(path.read_text(encoding="utf-8"), str(path)))
        assert findings == [], [str(f) for f in findings]

    def test_allowlist_paths_exist(self):
        # Guards against the sanctioned files being renamed without updating
        # the linter's allowlist.
        for suffix, _scope in DENSIFY_ALLOWLIST:
            assert (REPO_ROOT / "src" / suffix).exists(), suffix

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("assert True\n")
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "SOLV003" in out

    def test_cli_invocation(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint_solver.py"), "src/repro"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stderr

    def test_finding_str(self):
        finding = Finding("a.py", 3, "SOLV003", "no asserts")
        assert str(finding) == "a.py:3: SOLV003: no asserts"
