"""Tests for the pre-solve static analyzer (:mod:`repro.optim.analysis`).

Per-rule units on hand-built broken forms, the ``check=`` solver option
wiring (off / warn / strict) across backends and sessions, the diagnostics
reporter, and a property test running the analyzer in strict mode over the
differential-fuzz model corpus: feasible instances must produce zero
error-severity findings, and seeded corruptions must be caught.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.optim import (
    Diagnostic,
    Model,
    ModelAnalysisError,
    SolverError,
    SolveStatus,
    analyze_form,
    lin_sum,
)
from repro.optim import diagnostics as diag
from repro.optim import instrumentation as instr
from repro.optim.analysis import CHECK_MODES, ERROR, INFO, WARNING, enforce, has_errors
from repro.optim.model import StandardForm
from repro.optim.sparse import SparseMatrix

from tests.test_optim_differential import _random_model


def _form(
    c,
    A_ub=None,
    b_ub=None,
    A_eq=None,
    b_eq=None,
    lb=None,
    ub=None,
    integrality=None,
    sparse=True,
    **kwargs,
):
    """Hand-build a StandardForm from lists; defaults give a well-formed LP."""
    c = np.asarray(c, dtype=kwargs.pop("c_dtype", float))
    n = c.shape[0] if c.ndim == 1 else 0
    def matrix(rows):
        dense = np.asarray(rows if rows is not None else np.zeros((0, n)), dtype=float)
        return SparseMatrix.from_dense(dense) if sparse else dense
    return StandardForm(
        c=c,
        A_ub=matrix(A_ub),
        b_ub=np.asarray(b_ub if b_ub is not None else [], dtype=float),
        A_eq=matrix(A_eq),
        b_eq=np.asarray(b_eq if b_eq is not None else [], dtype=float),
        lb=np.asarray(lb if lb is not None else np.zeros(n), dtype=float),
        ub=np.asarray(ub if ub is not None else np.full(n, np.inf), dtype=float),
        integrality=np.asarray(integrality if integrality is not None else np.zeros(n), dtype=float),
        **kwargs,
    )


def _rules(diagnostics, severity=None):
    return sorted(
        {d.rule for d in diagnostics if severity is None or d.severity == severity}
    )


class TestPerRuleUnits:
    def test_clean_model_is_clean(self):
        form = _form([1.0, 2.0], A_ub=[[1.0, 1.0]], b_ub=[4.0], ub=[5.0, 5.0])
        assert analyze_form(form) == []

    def test_shape_mismatch_rhs(self):
        form = _form([1.0, 1.0], A_ub=[[1.0, 1.0]], b_ub=[1.0, 2.0])
        found = analyze_form(form)
        assert _rules(found, ERROR) == ["shape-mismatch"]

    def test_shape_mismatch_bounds_and_names(self):
        form = _form([1.0, 1.0], lb=[0.0], ub=[1.0, 1.0, 1.0], names=["x"])
        assert _rules(analyze_form(form), ERROR) == ["shape-mismatch"]

    def test_shape_mismatch_aborts_row_passes(self):
        # The mismatched rhs would crash / nonsense the row passes if run.
        form = _form([1.0], A_ub=[[np.inf]], b_ub=[1.0, np.nan])
        found = analyze_form(form)
        assert all(d.rule in ("shape-mismatch", "dtype") for d in found)

    def test_dtype(self):
        form = _form([1, 2], c_dtype=np.int64)
        assert "dtype" in _rules(analyze_form(form), ERROR)

    def test_nonfinite_objective(self):
        form = _form([np.nan, 1.0], names=["x", "y"])
        found = [d for d in analyze_form(form) if d.rule == "nonfinite-objective"]
        assert len(found) == 1 and found[0].col == 0 and "'x'" in found[0].message

    def test_nonfinite_matrix_entry(self):
        form = _form([1.0, 1.0], A_ub=[[np.inf, 1.0]], b_ub=[1.0])
        found = [d for d in analyze_form(form) if d.rule == "nonfinite-matrix"]
        assert len(found) == 1
        assert (found[0].block, found[0].row, found[0].col) == ("ub", 0, 0)

    def test_nonfinite_rhs(self):
        form = _form([1.0], A_eq=[[1.0]], b_eq=[np.nan])
        found = [d for d in analyze_form(form) if d.rule == "nonfinite-rhs"]
        assert len(found) == 1 and found[0].block == "eq"

    def test_nan_bound(self):
        form = _form([1.0], lb=[np.nan])
        assert "nan-bound" in _rules(analyze_form(form), ERROR)

    def test_bounds_cross(self):
        form = _form([1.0, 1.0], lb=[0.0, 2.0], ub=[1.0, 1.0])
        found = [d for d in analyze_form(form) if d.rule == "bounds-cross"]
        assert len(found) == 1 and found[0].col == 1

    def test_row_infeasible_over_bounds(self):
        # x1 + x2 >= 3 over [0,1]^2, lowered as -x1 - x2 <= -3.
        form = _form([0.0, 0.0], A_ub=[[-1.0, -1.0]], b_ub=[-3.0], ub=[1.0, 1.0])
        found = [d for d in analyze_form(form) if d.rule == "row-infeasible"]
        assert len(found) == 1 and found[0].severity == ERROR

    def test_eq_row_unreachable_rhs(self):
        form = _form([0.0], A_eq=[[1.0]], b_eq=[5.0], ub=[1.0])
        assert "row-infeasible" in _rules(analyze_form(form), ERROR)

    def test_empty_row_contradictory_rhs(self):
        form = _form([1.0], A_eq=[[0.0]], b_eq=[2.0])
        found = [d for d in analyze_form(form) if d.rule == "row-infeasible"]
        assert len(found) == 1 and "empty" in found[0].message

    def test_empty_row_satisfied_is_warning(self):
        form = _form([1.0], A_ub=[[0.0]], b_ub=[1.0])
        found = [d for d in analyze_form(form) if d.rule == "empty-row"]
        assert len(found) == 1 and found[0].severity == WARNING

    def test_row_redundant_info(self):
        # x <= 9 while ub already caps x at 1.
        form = _form([1.0], A_ub=[[1.0]], b_ub=[9.0], ub=[1.0])
        found = [d for d in analyze_form(form) if d.rule == "row-redundant"]
        assert len(found) == 1 and found[0].severity == INFO

    def test_integrality_fractional_fixed(self):
        form = _form([1.0], lb=[0.5], ub=[0.5], integrality=[1.0])
        found = [d for d in analyze_form(form) if d.rule == "integrality-empty"]
        assert len(found) == 1 and "fractional" in found[0].message

    def test_integrality_window_without_integer(self):
        form = _form([1.0], lb=[0.2], ub=[0.8], integrality=[1.0])
        assert "integrality-empty" in _rules(analyze_form(form), ERROR)

    def test_integrality_window_ok(self):
        form = _form([1.0], lb=[0.2], ub=[1.2], integrality=[1.0])
        assert "integrality-empty" not in _rules(analyze_form(form))

    def test_duplicate_ub_rows(self):
        form = _form(
            [1.0, 1.0],
            A_ub=[[1.0, 2.0], [2.0, 4.0]],
            b_ub=[1.0, 5.0],
            ub=[1.0, 1.0],
        )
        found = [d for d in analyze_form(form) if d.rule == "duplicate-row"]
        assert len(found) == 1 and found[0].row == 1

    def test_opposite_direction_ub_rows_are_not_duplicates(self):
        # x <= 3 and -x <= -1 bracket a range; not redundant.
        form = _form([1.0], A_ub=[[1.0], [-1.0]], b_ub=[3.0, -1.0], ub=[5.0])
        assert "duplicate-row" not in _rules(analyze_form(form))

    def test_parallel_inconsistent_eq_rows(self):
        # x + y == 1 and 2x + 2y == 4 cannot both hold.
        form = _form(
            [1.0, 1.0],
            A_eq=[[1.0, 1.0], [2.0, 2.0]],
            b_eq=[1.0, 4.0],
            ub=[9.0, 9.0],
        )
        found = [d for d in analyze_form(form) if d.rule == "parallel-inconsistent"]
        assert len(found) == 1 and found[0].severity == ERROR

    def test_parallel_consistent_eq_rows_warn_only(self):
        form = _form(
            [1.0, 1.0],
            A_eq=[[1.0, 1.0], [2.0, 2.0]],
            b_eq=[1.0, 2.0],
            ub=[9.0, 9.0],
        )
        found = analyze_form(form)
        assert "duplicate-row" in _rules(found, WARNING)
        assert not has_errors(found)

    def test_dangling_column_info(self):
        form = _form([0.0, 1.0], A_ub=[[1.0, 0.0]], b_ub=[1.0], ub=[2.0, 2.0])
        found = [d for d in analyze_form(form) if d.rule == "dangling-column"]
        assert len(found) == 1 and found[0].severity == INFO and found[0].col == 1

    def test_dangling_column_unbounded_escalates(self):
        # Minimizing -x with x unconstrained above and in no row: unbounded.
        form = _form([-1.0], ub=[np.inf])
        found = [d for d in analyze_form(form) if d.rule == "dangling-column"]
        assert len(found) == 1 and found[0].severity == WARNING

    def test_scaling_row(self):
        form = _form(
            [1.0, 1.0],
            A_ub=[[1e-6, 1e6]],
            b_ub=[1.0],
            ub=[1.0, 1.0],
        )
        assert "scaling-row" in _rules(analyze_form(form), WARNING)

    def test_scaling_global_without_row_spread(self):
        form = _form(
            [1.0, 1.0],
            A_ub=[[1e-6, 2e-6], [1e6, 2e6]],
            b_ub=[1.0, 1e7],
            ub=[1.0, 1.0],
        )
        found = analyze_form(form)
        assert "scaling-global" in _rules(found, WARNING)
        assert "scaling-row" not in _rules(found)

    def test_dense_lowering_analyzed_identically(self):
        kwargs = dict(
            A_ub=[[1.0, 1.0], [1.0, 1.0]], b_ub=[1.0, 5.0], ub=[9.0, 9.0]
        )
        sparse_rules = _rules(analyze_form(_form([1.0, np.nan], sparse=True, **kwargs)))
        dense_rules = _rules(analyze_form(_form([1.0, np.nan], sparse=False, **kwargs)))
        assert sparse_rules == dense_rules == ["duplicate-row", "nonfinite-objective"]

    def test_findings_sorted_most_severe_first(self):
        form = _form(
            [np.nan, 0.0],
            A_ub=[[0.0, 0.0], [1.0, 0.0]],
            b_ub=[1.0, 99.0],
            ub=[1.0, 1.0],
        )
        severities = [d.severity for d in analyze_form(form)]
        rank = {ERROR: 0, WARNING: 1, INFO: 2}
        assert severities == sorted(severities, key=rank.__getitem__)

    def test_instrumentation_counters(self):
        instr.reset()
        analyze_form(_form([np.nan]))
        snap = instr.snapshot()
        assert snap["analyzer_runs"] == 1
        assert snap["analyzer_findings"] >= 1


class TestEnforceAndWiring:
    def setup_method(self):
        diag.reset()

    def teardown_method(self):
        diag.reset()

    def _broken_model(self):
        m = Model("broken", sense="min")
        x = m.add_var("x", lb=0.0, ub=1.0)
        m.add_constr(x >= 3.0, name="impossible")
        m.set_objective(x)
        return m

    def test_enforce_off_skips(self):
        assert enforce(self._broken_model().to_standard_form(), "off") == []

    def test_enforce_unknown_mode(self):
        with pytest.raises(ModelAnalysisError, match="check mode"):
            enforce(self._broken_model().to_standard_form(), "loud")

    def test_enforce_warn_routes_through_handler(self):
        captured = []
        diag.set_handler(lambda label, found: captured.append((label, list(found))))
        found = enforce(self._broken_model().to_standard_form(), "warn", label="lbl")
        assert found and captured and captured[0][0] == "lbl"
        assert [d.rule for d in captured[0][1]] == [d.rule for d in found]

    def test_enforce_strict_raises_with_diagnostics(self):
        with pytest.raises(ModelAnalysisError, match="row-infeasible") as err:
            enforce(self._broken_model().to_standard_form(), "strict", label="lbl")
        assert all(isinstance(d, Diagnostic) for d in err.value.diagnostics)
        assert all(d.severity == ERROR for d in err.value.diagnostics)

    def test_enforce_strict_passes_warnings(self):
        m = Model("dup", sense="min")
        x = m.add_var("x", lb=0.0, ub=1.0)
        m.add_constr(x <= 0.75, name="a")
        m.add_constr(x <= 0.9, name="b")  # parallel, redundant: warning only
        m.set_objective(-1.0 * x)
        found = enforce(m.to_standard_form(), "strict")
        assert found and not has_errors(found)

    @pytest.mark.parametrize("backend", ["simplex", "auto"])
    def test_solve_check_strict_raises(self, backend):
        with pytest.raises(ModelAnalysisError):
            self._broken_model().solve(backend=backend, check="strict")

    def test_solve_check_warn_still_solves(self):
        captured = []
        diag.set_handler(lambda label, found: captured.append(label))
        sol = self._broken_model().solve(backend="simplex", check="warn")
        assert sol.status is SolveStatus.INFEASIBLE
        assert captured == ["broken"]

    def test_solve_check_default_off(self):
        captured = []
        diag.set_handler(lambda label, found: captured.append(label))
        sol = self._broken_model().solve(backend="simplex")
        assert sol.status is SolveStatus.INFEASIBLE
        assert captured == []

    def test_solve_check_invalid_value(self):
        with pytest.raises(SolverError, match="check option"):
            self._broken_model().solve(backend="simplex", check="nope")

    def test_clean_model_solves_under_strict(self):
        m = Model("clean", sense="max")
        x = m.add_var("x", lb=0.0, ub=4.0)
        y = m.add_var("y", lb=0.0, ub=4.0)
        m.add_constr(x + y <= 4.0, name="cap")
        m.set_objective(3.0 * x + 2.0 * y)
        sol = m.solve(backend="simplex", check="strict")
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(12.0)

    def test_session_check_reanalyzes_patched_form(self):
        m = Model("patched", sense="min")
        x = m.add_var("x", lb=0.0, ub=1.0)
        m.add_constr(x <= 0.5, name="cap")
        m.set_objective(-1.0 * x)
        session = m.session(backend="simplex", check="strict")
        assert session.solve().status is SolveStatus.OPTIMAL
        # Patch the rhs so the row is trivially violated over the bounds:
        # x <= -2 with x in [0, 1].
        session.update_constraint_rhs("cap", -2.0)
        with pytest.raises(ModelAnalysisError, match="row-infeasible"):
            session.solve()
        # Per-call override relaxes the session default.
        assert session.solve(check="off").status is SolveStatus.INFEASIBLE

    def test_session_analyze_method(self):
        m = Model("sess", sense="min")
        x = m.add_var("x", lb=0.0, ub=1.0)
        m.add_constr(x <= 0.5, name="cap")
        m.set_objective(x)
        session = m.session(backend="simplex")
        assert session.analyze(mode="warn") == []
        session.update_var_bounds(x, lb=0.75)  # cap is now infeasible
        found = session.analyze(mode="warn")
        assert "row-infeasible" in _rules(found, ERROR)
        with pytest.raises(SolverError, match="check option"):
            session.analyze(mode="bogus")


class TestDiagnosticsReporter:
    def setup_method(self):
        diag.reset()

    def teardown_method(self):
        diag.reset()

    def test_format_report_tallies(self):
        found = analyze_form(
            _form([np.nan, 1.0], A_ub=[[0.0, 0.0]], b_ub=[1.0], ub=[1.0, 1.0])
        )
        text = diag.format_report(found, label="m")
        assert "1 error" in text and "1 warning" in text
        assert "nonfinite-objective" in text

    def test_format_report_clean(self):
        assert "clean" in diag.format_report([], label="m")

    def test_set_handler_returns_previous_and_journal(self):
        seen = []
        previous = diag.set_handler(lambda label, found: seen.append(label))
        try:
            diag.report([Diagnostic(WARNING, "empty-row", "msg")], label="j")
        finally:
            diag.set_handler(previous)
        assert seen == ["j"]
        labels = [label for label, _ in diag.recent_reports()]
        assert labels == ["j"]


class TestFuzzCorpusProperty:
    """Strict-mode analyzer over the differential-fuzz model corpus."""

    N_INSTANCES = 250

    def test_no_false_positives_and_infeasibility_findings_are_true(self):
        rng = np.random.default_rng(20260808)
        never_expected = {
            "shape-mismatch",
            "dtype",
            "nonfinite-objective",
            "nonfinite-matrix",
            "nonfinite-rhs",
            "nan-bound",
            "bounds-cross",
            "integrality-empty",
        }
        flagged_infeasible = 0
        for k in range(self.N_INSTANCES):
            model = _random_model(rng, mip=bool(k % 2))
            form = model.to_standard_form()
            found = analyze_form(form)
            structural = [d for d in found if d.rule in never_expected]
            assert not structural, (k, [str(d) for d in structural])
            sol = model.solve(check="off")
            if has_errors(found):
                # The only error rules reachable here assert infeasibility
                # over the variable bounds; the solver must agree.
                assert sol.status is SolveStatus.INFEASIBLE, (
                    k,
                    sol.status,
                    [str(d) for d in found],
                )
                flagged_infeasible += 1
            elif sol.status is SolveStatus.OPTIMAL:
                # Feasible instance: strict mode must not block the solve.
                strict = model.solve(check="strict")
                assert strict.status is SolveStatus.OPTIMAL
        # The generator produces some trivially infeasible rows; make sure
        # the property test actually exercised the error path.
        assert flagged_infeasible >= 1

    @pytest.mark.parametrize(
        "corrupt, expected_rule",
        [
            (lambda f: f.c.__setitem__(0, np.nan), "nonfinite-objective"),
            (
                lambda f: (f.lb.__setitem__(0, 2.0), f.ub.__setitem__(0, 1.0)),
                "bounds-cross",
            ),
            (
                # Box every variable so the row activity range is finite,
                # then demand an unreachably negative rhs.
                lambda f: (
                    f.lb.__setitem__(slice(None), 0.0),
                    f.ub.__setitem__(slice(None), 1.0),
                    f.b_ub.__setitem__(slice(None), -1e18),
                ),
                "row-infeasible",
            ),
            (lambda f: f.lb.__setitem__(0, np.nan), "nan-bound"),
        ],
    )
    def test_seeded_corruptions_are_caught(self, corrupt, expected_rule):
        rng = np.random.default_rng(99)
        caught = 0
        for _ in range(40):
            model = _random_model(rng, mip=False)
            form = model.to_standard_form()
            if expected_rule == "row-infeasible" and form.b_ub.size == 0:
                continue
            corrupt(form)
            found = analyze_form(form)
            if expected_rule in _rules(found, ERROR):
                caught += 1
                with pytest.raises(ModelAnalysisError):
                    enforce(form, "strict", diagnostics=found)
        assert caught >= 30

    def test_corrupted_integrality_caught(self):
        rng = np.random.default_rng(7)
        model = _random_model(rng, mip=True)
        form = model.to_standard_form()
        j = int(np.flatnonzero(np.asarray(form.integrality) != 0)[0])
        form.lb[j] = 0.25
        form.ub[j] = 0.75
        found = analyze_form(form)
        assert "integrality-empty" in _rules(found, ERROR)

    def test_corrupted_shapes_caught(self):
        rng = np.random.default_rng(11)
        model = _random_model(rng, mip=False)
        form = model.to_standard_form()
        broken = dataclasses.replace(form, b_ub=np.append(form.b_ub, 1.0))
        assert "shape-mismatch" in _rules(analyze_form(broken), ERROR)
