"""Tests for the Theorem 1 reductions between Set Cover and PPM(1)."""

import networkx as nx
import pytest

from repro.covering.reductions import (
    edge_key,
    monitoring_from_set_cover,
    set_cover_from_monitoring,
)
from repro.covering.set_cover import SetCoverInstance, exact_set_cover, greedy_set_cover
from repro.passive import PPMProblem, solve_ilp
from repro.traffic.demands import Traffic, TrafficMatrix


@pytest.fixture()
def msc_instance():
    return SetCoverInstance.from_lists(
        {
            "c1": ["u1", "u2"],
            "c2": ["u2", "u3"],
            "c3": ["u3", "u4"],
            "c4": ["u4", "u1"],
            "c5": ["u1", "u3"],
        }
    )


class TestMonitoringFromSetCover:
    def test_graph_structure(self, msc_instance):
        reduction = monitoring_from_set_cover(msc_instance)
        # One edge per subset plus two auxiliary edges per intersecting pair.
        assert len(reduction.subset_edges) == len(msc_instance.subsets)
        assert isinstance(reduction.graph, nx.Graph)
        # 2 vertices per subset, as in the proof of Theorem 1.
        assert reduction.graph.number_of_nodes() == 2 * len(msc_instance.subsets)

    def test_paths_are_valid_walks(self, msc_instance):
        reduction = monitoring_from_set_cover(msc_instance)
        for element, path in reduction.paths.items():
            assert len(path) >= 2
            for u, v in zip(path[:-1], path[1:]):
                assert reduction.graph.has_edge(u, v), (element, u, v)

    def test_element_path_crosses_exactly_its_subset_edges(self, msc_instance):
        reduction = monitoring_from_set_cover(msc_instance)
        for element, path in reduction.paths.items():
            crossed = {edge_key(u, v) for u, v in zip(path[:-1], path[1:])}
            for label, items in msc_instance.subsets.items():
                if element in items:
                    assert reduction.subset_edges[label] in crossed

    def test_optimal_monitoring_yields_optimal_cover(self, msc_instance):
        reduction = monitoring_from_set_cover(msc_instance)
        matrix = TrafficMatrix(
            [
                Traffic.single_path(element, path, 1.0)
                for element, path in reduction.paths.items()
            ]
        )
        problem = PPMProblem(matrix, coverage=1.0)
        placement = solve_ilp(problem)
        cover = reduction.cover_from_edges(placement.monitored_links)
        assert msc_instance.is_cover(cover)
        assert len(cover) == len(exact_set_cover(msc_instance))

    def test_missing_element_rejected(self):
        instance = SetCoverInstance(universe={1, 2}, subsets={"a": {1}})
        with pytest.raises(ValueError):
            monitoring_from_set_cover(instance)


class TestSetCoverFromMonitoring:
    def test_subsets_are_links(self):
        paths = {"t1": ["a", "b", "c"], "t2": ["b", "c", "d"]}
        instance = set_cover_from_monitoring(paths)
        assert instance.universe == {"t1", "t2"}
        assert instance.subsets[edge_key("b", "c")] == {"t1", "t2"}
        assert instance.subsets[edge_key("a", "b")] == {"t1"}

    def test_cover_solves_monitoring(self):
        paths = {
            "t1": ["a", "b", "c"],
            "t2": ["c", "d"],
            "t3": ["a", "e"],
        }
        instance = set_cover_from_monitoring(paths)
        cover = greedy_set_cover(instance)
        covered = set()
        for link in cover:
            covered |= instance.subsets[link]
        assert covered == {"t1", "t2", "t3"}

    def test_short_path_rejected(self):
        with pytest.raises(ValueError):
            set_cover_from_monitoring({"t1": ["a"]})

    def test_round_trip_optimum_is_preserved(self, msc_instance):
        """MSC -> monitoring -> MSC keeps the optimal cover size (Theorem 1)."""
        reduction = monitoring_from_set_cover(msc_instance)
        rebuilt = set_cover_from_monitoring(reduction.paths)
        original_opt = len(exact_set_cover(msc_instance))
        rebuilt_opt = len(exact_set_cover(rebuilt))
        assert rebuilt_opt == original_opt
